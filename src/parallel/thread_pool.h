// Fixed-size thread pool — the paper's parallelism strategy 2 (§3.6):
// "open exactly one thread per CPU core" (the thread count is a parameter so
// the 4/8/16/32 sweeps of Tables II/IV/VI/VIII can reuse it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/cancellation.h"
#include "util/macros.h"

namespace sss {

/// \brief Scheduling counters for one DynamicParallelFor call.
///
/// `chunks_executed` is the number of chunk claims that did work;
/// `chunks_stolen` is how many of those exceeded a worker's fair share
/// (⌈chunks/workers⌉) — the chunks a fast worker took over from slow ones,
/// i.e. how much the dynamic cursor actually rebalanced.
struct PoolRunStats {
  uint64_t chunks_executed = 0;
  uint64_t chunks_stolen = 0;
};

/// \brief A fixed set of worker threads consuming a shared task queue.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  SSS_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// \brief Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Runs fn(i) for all i in [0, n), statically partitioned into one
  /// contiguous chunk per worker (the paper's "simple partitioning"), and
  /// blocks until done. fn must be safe to call concurrently. When `stop`
  /// requests a stop, workers finish their current item and skip the rest of
  /// their range; unreached items are simply never invoked.
  void StaticParallelFor(size_t n, const std::function<void(size_t)>& fn,
                         const SearchContext* stop = nullptr);

  /// \brief Like StaticParallelFor but with dynamic (work-stealing-ish)
  /// chunked scheduling via a shared atomic cursor — better when per-item
  /// cost is skewed, as it is across similarity queries. Stop conditions are
  /// checked once per chunk claim. When `run_stats` is non-null it is filled
  /// with this call's scheduling counters after the barrier.
  void DynamicParallelFor(size_t n, const std::function<void(size_t)>& fn,
                          size_t chunk = 1,
                          const SearchContext* stop = nullptr,
                          PoolRunStats* run_stats = nullptr);

  /// \brief Discards every queued-but-not-started task and returns how many
  /// were dropped. Running tasks are unaffected (cancellation of in-progress
  /// work is cooperative, via SearchContext). Wakes any Wait() callers once
  /// the drop brings in-flight work to zero.
  size_t CancelPending();

  size_t num_threads() const noexcept { return workers_.size(); }

  /// \brief A sensible default worker count for this machine.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sss
