// Bump-pointer arena allocator. Trie nodes (src/core/trie.h) and other
// build-once/free-at-once structures allocate from an Arena: allocation is a
// pointer bump, deallocation is dropping the arena, and nodes end up
// contiguous in memory, which matters for traversal locality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/macros.h"

namespace sss {

/// \brief A monotonic (bump-pointer) allocator.
///
/// Memory is carved from geometrically growing blocks and released only when
/// the arena is destroyed or Reset(). Not thread-safe; use one arena per
/// builder thread.
class Arena {
 public:
  /// \param initial_block_bytes size of the first block; subsequent blocks
  ///        double up to kMaxBlockBytes.
  explicit Arena(size_t initial_block_bytes = 4096);
  ~Arena() = default;

  SSS_DISALLOW_COPY_AND_ASSIGN(Arena);
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// \brief Allocates `bytes` with the given alignment (a power of two).
  /// Never returns nullptr; aborts on allocation failure (an arena caller has
  /// no recovery path).
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// \brief Allocates and default-constructs a T. The destructor is NOT run
  /// at arena destruction; only use for trivially destructible T.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// \brief Allocates an uninitialized array of `count` T.
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::NewArray requires trivially destructible types");
    return static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
  }

  /// \brief Copies `data[0..len)` into the arena and returns the copy.
  const char* CopyString(const char* data, size_t len);

  /// \brief Total bytes handed out by Allocate().
  size_t bytes_allocated() const noexcept { return bytes_allocated_; }

  /// \brief Total bytes reserved from the system (>= bytes_allocated).
  size_t bytes_reserved() const noexcept { return bytes_reserved_; }

  /// \brief Number of blocks currently held.
  size_t num_blocks() const noexcept { return blocks_.size(); }

  /// \brief Frees every block and returns the arena to its initial state.
  /// Invalidates all previously returned pointers.
  void Reset();

  /// \brief Invalidates all previously returned pointers like Reset(), but
  /// keeps the newest (largest) block for reuse, so a caller that allocates
  /// a similar amount every round reaches a steady state with no block
  /// allocation at all. This is what batch planners and per-worker scratch
  /// buffers call between batches.
  void Rewind();

 private:
  static constexpr size_t kMaxBlockBytes = size_t{4} << 20;  // 4 MiB

  void AddBlock(size_t min_bytes);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_block_bytes_;
  size_t initial_block_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace sss
