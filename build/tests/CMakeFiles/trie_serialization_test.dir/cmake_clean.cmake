file(REMOVE_RECURSE
  "CMakeFiles/trie_serialization_test.dir/core/trie_serialization_test.cc.o"
  "CMakeFiles/trie_serialization_test.dir/core/trie_serialization_test.cc.o.d"
  "trie_serialization_test"
  "trie_serialization_test.pdb"
  "trie_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
