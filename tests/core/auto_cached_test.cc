#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/auto_searcher.h"
#include "core/cached.h"
#include "gen/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

// --------------------------------------------------------------------------
// AutoSearcher
// --------------------------------------------------------------------------

TEST(AutoSearcherTest, RoutesCityWorkloadToScan) {
  const gen::Workload w =
      gen::MakeWorkload(gen::WorkloadKind::kCityNames, 0.005, 1);
  AutoSearcher engine(w.dataset);
  EXPECT_FALSE(engine.PrefersIndex());
  EXPECT_EQ(engine.RouteFor(2), "scan");
}

TEST(AutoSearcherTest, RoutesDnaWorkloadToTrie) {
  const gen::Workload w =
      gen::MakeWorkload(gen::WorkloadKind::kDnaReads, 0.001, 2);
  AutoSearcher engine(w.dataset);
  EXPECT_TRUE(engine.PrefersIndex());
  EXPECT_EQ(engine.RouteFor(8), "trie");
  // Hopeless thresholds degrade to the scan even on index-friendly data.
  EXPECT_EQ(engine.RouteFor(80), "scan");
}

TEST(AutoSearcherTest, ResultsMatchBruteForceOnBothRoutes) {
  Xoshiro256 rng(0xA070);
  for (const char* alphabet : {"abcdefghij -", "ACGT"}) {
    const bool dna = std::string_view(alphabet) == "ACGT";
    Dataset d = RandomDataset(&rng, alphabet, 150, dna ? 60 : 2,
                              dna ? 80 : 20,
                              dna ? AlphabetKind::kDna
                                  : AlphabetKind::kGeneric);
    AutoSearcher engine(d);
    for (int t = 0; t < 20; ++t) {
      const Query q{
          RandomString(&rng, alphabet, dna ? 60 : 2, dna ? 80 : 20),
          static_cast<int>(rng.Uniform(5))};
      ASSERT_EQ(engine.Search(q), BruteForceSearch(d, q))
          << (dna ? "dna" : "city") << " q='" << q.text << "'";
    }
  }
}

TEST(AutoSearcherTest, LazyBuildOnlyWhatIsUsed) {
  const gen::Workload w =
      gen::MakeWorkload(gen::WorkloadKind::kCityNames, 0.002, 3);
  AutoSearcher engine(w.dataset);
  EXPECT_EQ(engine.memory_bytes(), 0u);  // nothing built yet
  (void)engine.Search({"anything", 1});
  const size_t after_scan = engine.memory_bytes();
  // The scan engine has no auxiliary structures by default; the trie was
  // not built (city data routes to the scan).
  EXPECT_EQ(after_scan, 0u);
}

TEST(AutoSearcherTest, DegradesTimedOutTrieProbeToScan) {
  Xoshiro256 rng(0xA071);
  // Long narrow-alphabet strings: the router prefers the trie.
  Dataset d = RandomDataset(&rng, "ACGT", 200, 60, 80, AlphabetKind::kDna);
  AutoSearcherOptions options;
  options.probe_fraction = 0.0;  // zero probe budget: the probe always
                                 // expires, forcing the degradation path
  AutoSearcher engine(d, options);
  ASSERT_TRUE(engine.PrefersIndex());

  SearchContext ctx;
  ctx.deadline = Deadline::After(std::chrono::hours(1));
  ctx.check_interval = 1;
  const Query q{RandomString(&rng, "ACGT", 60, 80), 3};
  MatchList out;
  const Status st = engine.Search(q, ctx, &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out, BruteForceSearch(d, q));
  EXPECT_GE(engine.degraded_probes(), 1u);
}

TEST(AutoSearcherTest, NoDeadlineNeverDegrades) {
  Xoshiro256 rng(0xA072);
  Dataset d = RandomDataset(&rng, "ACGT", 100, 60, 80, AlphabetKind::kDna);
  AutoSearcherOptions options;
  options.probe_fraction = 0.0;
  AutoSearcher engine(d, options);
  const Query q{RandomString(&rng, "ACGT", 60, 80), 2};
  EXPECT_EQ(engine.Search(q), BruteForceSearch(d, q));
  EXPECT_EQ(engine.degraded_probes(), 0u);
}

TEST(AutoSearcherTest, ExpiredOverallDeadlineStillCancels) {
  Xoshiro256 rng(0xA073);
  Dataset d = RandomDataset(&rng, "ACGT", 100, 60, 80, AlphabetKind::kDna);
  AutoSearcher engine(d);
  SearchContext ctx;
  ctx.deadline = Deadline::AfterMillis(-1);
  ctx.check_interval = 1;
  MatchList out;
  const Status st = engine.Search({RandomString(&rng, "ACGT", 60, 80), 2},
                                  ctx, &out);
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------------------
// CachedSearcher
// --------------------------------------------------------------------------

TEST(CachedSearcherTest, CancelledSearchesAreNotCached) {
  Xoshiro256 rng(0xCAC4);
  Dataset d = RandomDataset(&rng, "abcd", 100, 2, 10);
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 4);

  SearchContext expired;
  expired.deadline = Deadline::AfterMillis(-1);
  expired.check_interval = 1;
  MatchList out;
  const Query q{"abca", 1};
  const Status st = cached.Search(q, expired, &out);
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cached.entries(), 0u);

  // Once conditions clear, the same query computes, caches, and then hits.
  const MatchList good = cached.Search(q);
  EXPECT_EQ(good, BruteForceSearch(d, q));
  EXPECT_EQ(cached.entries(), 1u);
  const uint64_t hits_before = cached.hits();
  EXPECT_EQ(cached.Search(q), good);
  EXPECT_EQ(cached.hits(), hits_before + 1);
}

TEST(CachedSearcherTest, HitsAndMissesAreCounted) {
  Xoshiro256 rng(0xCAC0);
  Dataset d = RandomDataset(&rng, "abcd", 100, 2, 10);
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 16);

  const Query q{"abca", 1};
  const MatchList first = cached.Search(q);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 0u);
  EXPECT_EQ(cached.Search(q), first);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.entries(), 1u);
  EXPECT_EQ(cached.name(), "sequential_scan+cache");
}

TEST(CachedSearcherTest, DistinctThresholdsAreDistinctEntries) {
  Xoshiro256 rng(0xCAC1);
  Dataset d = RandomDataset(&rng, "abcd", 100, 2, 10);
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 16);
  (void)cached.Search({"abc", 0});
  (void)cached.Search({"abc", 2});
  EXPECT_EQ(cached.entries(), 2u);
  EXPECT_EQ(cached.misses(), 2u);
}

TEST(CachedSearcherTest, CachedResultsAreCorrect) {
  Xoshiro256 rng(0xCAC2);
  Dataset d = RandomDataset(&rng, "abcde", 150, 1, 12);
  auto inner =
      std::move(MakeSearcher(EngineKind::kCompressedTrieIndex, d))
          .ValueOrDie();
  CachedSearcher cached(inner.get(), 64);  // roomy: pass 2 is pure hits
  QuerySet queries;
  for (int i = 0; i < 30; ++i) {
    queries.push_back({RandomString(&rng, "abcde", 1, 12),
                       static_cast<int>(i % 3)});
  }
  // Two passes: second is mostly hits; results must stay identical.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Query& q : queries) {
      ASSERT_EQ(cached.Search(q), BruteForceSearch(d, q))
          << "pass " << pass << " q='" << q.text << "'";
    }
  }
  EXPECT_GT(cached.hits(), 0u);
}

TEST(CachedSearcherTest, EvictsLeastRecentlyUsed) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 2);
  (void)cached.Search({"q1", 0});
  (void)cached.Search({"q2", 0});
  (void)cached.Search({"q1", 0});  // refresh q1
  (void)cached.Search({"q3", 0});  // evicts q2
  EXPECT_EQ(cached.entries(), 2u);
  const uint64_t hits_before = cached.hits();
  (void)cached.Search({"q1", 0});  // still cached
  EXPECT_EQ(cached.hits(), hits_before + 1);
  (void)cached.Search({"q2", 0});  // was evicted: miss
  EXPECT_EQ(cached.hits(), hits_before + 1);
}

TEST(CachedSearcherTest, ClearEmptiesCache) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 4);
  (void)cached.Search({"q", 0});
  cached.Clear();
  EXPECT_EQ(cached.entries(), 0u);
}

TEST(CachedSearcherTest, ConcurrentMixedQueriesStayCorrect) {
  Xoshiro256 rng(0xCAC3);
  Dataset d = RandomDataset(&rng, "abc", 200, 1, 10);
  auto inner =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  CachedSearcher cached(inner.get(), 8);
  QuerySet queries;
  SearchResults expected;
  for (int i = 0; i < 12; ++i) {
    queries.push_back({RandomString(&rng, "abc", 1, 10), i % 3});
    expected.push_back(BruteForceSearch(d, queries.back()));
  }
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        const size_t i = static_cast<size_t>(round) % queries.size();
        if (cached.Search(queries[i]) != expected[i]) ok = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sss
