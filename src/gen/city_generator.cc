#include "gen/city_generator.h"

#include <algorithm>
#include <map>

#include "gen/city_corpus.h"
#include "util/macros.h"

namespace sss::gen {

namespace {

constexpr unsigned char kEndSymbol = 0;

// Latin-1 accented variants per ASCII base letter, used for both cases.
struct AccentEntry {
  char base;
  const char* variants;  // Latin-1 bytes
};

// Lowercase variants (Latin-1 0xE0..0xFF block).
const AccentEntry kLowerAccents[] = {
    {'a', "\xe0\xe1\xe2\xe3\xe4\xe5"}, {'c', "\xe7"},
    {'e', "\xe8\xe9\xea\xeb"},         {'i', "\xec\xed\xee\xef"},
    {'n', "\xf1"},                     {'o', "\xf2\xf3\xf4\xf5\xf6\xf8"},
    {'u', "\xf9\xfa\xfb\xfc"},         {'y', "\xfd\xff"},
    {'d', "\xf0"},                     {'s', "\xdf"},
};

// Uppercase variants (0xC0..0xDE block).
const AccentEntry kUpperAccents[] = {
    {'A', "\xc0\xc1\xc2\xc3\xc4\xc5"}, {'C', "\xc7"},
    {'E', "\xc8\xc9\xca\xcb"},         {'I', "\xcc\xcd\xce\xcf"},
    {'N', "\xd1"},                     {'O', "\xd2\xd3\xd4\xd5\xd6\xd8"},
    {'U', "\xd9\xda\xdb\xdc"},         {'Y', "\xdd"},
    {'D', "\xd0"},                     {'T', "\xde"},
};

const char* FindVariants(char c) {
  for (const auto& entry : kLowerAccents) {
    if (entry.base == c) return entry.variants;
  }
  for (const auto& entry : kUpperAccents) {
    if (entry.base == c) return entry.variants;
  }
  return nullptr;
}

}  // namespace

CityNameGenerator::CityNameGenerator(CityGeneratorOptions options,
                                     uint64_t seed)
    : options_(options), rng_(seed) {
  SSS_CHECK(options_.order >= 1 && options_.order <= 3);
  SSS_CHECK(options_.min_length >= 1 &&
            options_.min_length <= options_.max_length);
  TrainModel();
}

void CityNameGenerator::TrainModel() {
  const uint32_t context_mask =
      options_.order == 3 ? 0xFFFFFFu : (options_.order == 2 ? 0xFFFFu : 0xFFu);

  // First pass: ordered counts (std::map keeps training deterministic and
  // independent of hash iteration order).
  std::map<uint32_t, std::map<unsigned char, uint64_t>> counts;
  for (size_t w = 0; w < kCityCorpusSize; ++w) {
    const char* name = kCityCorpus[w];
    uint32_t context = 0;
    for (const char* p = name; *p != '\0'; ++p) {
      const auto symbol = static_cast<unsigned char>(*p);
      counts[context][symbol]++;
      context = ((context << 8) | symbol) & context_mask;
    }
    counts[context][kEndSymbol]++;
  }

  // Second pass: cumulative sampling tables.
  for (const auto& [context, next_counts] : counts) {
    Transition& t = model_[context];
    double running = 0.0;
    for (const auto& [symbol, count] : next_counts) {
      running += static_cast<double>(count);
      t.symbols.push_back(symbol);
      t.cumulative.push_back(running);
    }
  }
}

std::string CityNameGenerator::SampleRaw() {
  const uint32_t context_mask =
      options_.order == 3 ? 0xFFFFFFu : (options_.order == 2 ? 0xFFFFu : 0xFFu);
  std::string out;
  uint32_t context = 0;
  // Bound the walk: if the chain refuses to terminate before max_length the
  // caller resamples.
  while (out.size() <= options_.max_length) {
    auto it = model_.find(context);
    if (it == model_.end()) break;  // unseen context: treat as end
    const Transition& t = it->second;
    const size_t idx =
        SampleCumulative(t.cumulative.data(), t.cumulative.size(), &rng_);
    const unsigned char symbol = t.symbols[idx];
    if (symbol == kEndSymbol) break;
    out.push_back(static_cast<char>(symbol));
    context = ((context << 8) | symbol) & context_mask;
  }
  return out;
}

void CityNameGenerator::ApplyAccents(std::string* s) {
  if (options_.accent_prob <= 0.0) return;
  for (char& c : *s) {
    if (!rng_.Bernoulli(options_.accent_prob)) continue;
    const char* variants = FindVariants(c);
    if (variants == nullptr) continue;
    const size_t n = std::char_traits<char>::length(variants);
    c = variants[rng_.Uniform(n)];
  }
}

void CityNameGenerator::ApplyTranscriptionNoise(std::string* s) {
  if (!rng_.Bernoulli(options_.exotic_string_prob)) return;
  for (char& c : *s) {
    if (c == ' ' || !rng_.Bernoulli(options_.exotic_char_prob)) continue;
    // Bytes 0x80..0xBF: the range the competition data populated with
    // non-Latin transcription characters.
    c = static_cast<char>(0x80 + rng_.Uniform(0x40));
  }
}

std::string CityNameGenerator::Next() {
  for (;;) {
    std::string name = SampleRaw();
    if (name.size() < options_.min_length || name.size() > options_.max_length) {
      continue;
    }
    ApplyAccents(&name);
    ApplyTranscriptionNoise(&name);
    return name;
  }
}

Dataset CityNameGenerator::Generate() {
  Dataset dataset("city_names", AlphabetKind::kGeneric);
  dataset.Reserve(options_.num_strings, options_.num_strings * 12);
  for (size_t i = 0; i < options_.num_strings; ++i) {
    dataset.Add(Next());
  }
  return dataset;
}

}  // namespace sss::gen
