// FailPoints — deterministic fault injection, modeled on the LevelDB /
// RocksDB sync-point technique: named hooks compiled into executors, readers
// and allocators let tests inject delays, errors and callbacks exactly where
// production failures would occur, without mocking whole subsystems.
//
// The framework is compiled only when the build defines SSS_FAILPOINTS
// (cmake -DSSS_FAILPOINTS=ON); in normal builds both macros expand to
// nothing, so production binaries carry zero overhead and zero attack
// surface.
//
// Usage in library code:
//   SSS_FAILPOINT("thread_pool:task");            // side effects only
//   SSS_FAILPOINT_STATUS("reader:read");          // may inject an error
//
// Usage in tests:
//   FailPoints::Instance().Sleep("thread_pool:task",
//                                std::chrono::milliseconds(50));
//   FailPoints::Instance().Fail("reader:read", Status::IOError("injected"));
//   FailPoints::Instance().DisableAll();          // always in teardown
#pragma once

#include "util/status.h"

#if defined(SSS_FAILPOINTS)

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace sss {

/// \brief Global registry of named failure-injection points. Thread-safe;
/// only exists in SSS_FAILPOINTS builds.
class FailPoints {
 public:
  static FailPoints& Instance();

  SSS_DISALLOW_COPY_AND_ASSIGN(FailPoints);

  /// \brief Makes `name` sleep for `duration` on each of its next `times`
  /// evaluations (-1 = every evaluation until disabled).
  void Sleep(std::string_view name, std::chrono::milliseconds duration,
             int times = -1);

  /// \brief Makes `name` return `error` from SSS_FAILPOINT_STATUS sites
  /// (plain SSS_FAILPOINT sites run the action but ignore the status).
  void Fail(std::string_view name, Status error, int times = -1);

  /// \brief Runs `fn` each time `name` is evaluated. `fn` must be
  /// thread-safe: failpoints in executors fire concurrently.
  void Callback(std::string_view name, std::function<void()> fn,
                int times = -1);

  void Disable(std::string_view name);
  void DisableAll();

  /// \brief How many times `name` was evaluated (enabled or not) since the
  /// last DisableAll()/ClearCounts. Proves a hook is actually on the path
  /// under test.
  uint64_t HitCount(std::string_view name) const;
  void ClearCounts();

  /// \brief Called by the macros; applies the configured action for `name`
  /// and returns the injected status (OK unless a Fail action is armed).
  Status Evaluate(const char* name);

 private:
  FailPoints() = default;

  struct Action {
    std::chrono::milliseconds sleep{0};
    Status error;                  // OK = no error injection
    std::function<void()> callback;
    int remaining = -1;            // -1 = unlimited
  };

  mutable std::mutex mu_;
  std::map<std::string, Action, std::less<>> actions_;
  std::map<std::string, uint64_t, std::less<>> hits_;
};

}  // namespace sss

#define SSS_FAILPOINT(name) \
  do {                      \
    (void)::sss::FailPoints::Instance().Evaluate(name); \
  } while (false)

#define SSS_FAILPOINT_STATUS(name)                                    \
  do {                                                                \
    ::sss::Status _sss_fp = ::sss::FailPoints::Instance().Evaluate(name); \
    if (SSS_PREDICT_FALSE(!_sss_fp.ok())) return _sss_fp;             \
  } while (false)

#else  // !SSS_FAILPOINTS

#define SSS_FAILPOINT(name) \
  do {                      \
  } while (false)
#define SSS_FAILPOINT_STATUS(name) \
  do {                             \
  } while (false)

#endif  // SSS_FAILPOINTS
