#include "util/random.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace sss {
namespace {

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256Test, UniformStaysInBounds) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, UniformBoundOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(Xoshiro256Test, UniformCoversAllValues) {
  Xoshiro256 rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256Test, UniformIsApproximatelyUnbiased) {
  Xoshiro256 rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.1) << "bucket " << b;
  }
}

TEST(Xoshiro256Test, UniformIntInclusiveRange) {
  Xoshiro256 rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256Test, UniformDoubleInHalfOpenUnit) {
  Xoshiro256 rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Xoshiro256Test, BernoulliDegenerateProbabilities) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Xoshiro256Test, ForkProducesIndependentStream) {
  Xoshiro256 a(31);
  Xoshiro256 b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64Test, AdvancesStateDeterministically) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state advanced
}

TEST(SampleCumulativeTest, RespectsWeights) {
  Xoshiro256 rng(37);
  // Weights 1, 3, 6 → cumulative 1, 4, 10.
  const double cumulative[] = {1.0, 4.0, 10.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[SampleCumulative(cumulative, 3, &rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.02);
}

TEST(SampleCumulativeTest, SingleEntryAlwaysZero) {
  Xoshiro256 rng(41);
  const double cumulative[] = {5.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleCumulative(cumulative, 1, &rng), 0u);
  }
}

TEST(SampleCumulativeTest, ZeroWeightEntryNeverSampled) {
  Xoshiro256 rng(43);
  // Entry 1 has zero weight (cumulative flat between 0 and 1).
  const double cumulative[] = {2.0, 2.0, 4.0};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(SampleCumulative(cumulative, 3, &rng), 1u);
  }
}

}  // namespace
}  // namespace sss
